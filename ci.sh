#!/bin/sh
# CI gate: vet plus the whole test suite under the race detector. The
# parallel search is only trustworthy raced, so -race is not optional
# here. Short mode (the default) trims the end-to-end determinism suite
# to its two fastest benchmark programs; run `./ci.sh -full` for the
# complete matrix. After the tests, the pad daemon is exercised for
# real: serve on an ephemeral port, submit a benchmark over HTTP, and
# require the report to match the edgar CLI byte-for-byte.
set -eu
cd "$(dirname "$0")"

go vet ./...
if [ "${1:-}" = "-full" ]; then
	go test -race -count=1 ./...
else
	go test -race -count=1 -short ./...
fi

# Mining microbenchmarks as a smoke test: one iteration each, just to
# prove the hot-loop harness still compiles and runs. (-short also keeps
# the heavy same-process layout A/B out of the smoke lane.)
go test ./internal/mining -run '^$' -bench . -benchtime 1x -short >/dev/null

# --- compaction-service end-to-end check -------------------------------
# The service deliberately omits the wall-clock suffix from its reports
# (cached responses must be byte-identical to fresh ones), so the CLI
# output is normalized with sed before diffing.
TMP=$(mktemp -d)
PAD_PID=""
W1_PID=""
W2_PID=""
cleanup() {
	[ -n "$PAD_PID" ] && kill "$PAD_PID" 2>/dev/null || true
	[ -n "$W1_PID" ] && kill "$W1_PID" 2>/dev/null || true
	[ -n "$W2_PID" ] && kill "$W2_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/pad" ./cmd/pad
go build -o "$TMP/edgar" ./cmd/edgar

# wait_addr ADDR_FILE LOG_FILE: block until pad writes its bound address.
wait_addr() {
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "ci.sh: pad never wrote its address" >&2
			cat "$2" >&2
			exit 1
		fi
		sleep 0.1
	done
	cat "$1"
}

"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr" 2>"$TMP/pad.log" &
PAD_PID=$!
ADDR=$(wait_addr "$TMP/addr" "$TMP/pad.log")

"$TMP/pad" submit -addr "$ADDR" internal/bench/programs/crc.mc >"$TMP/service.report"
"$TMP/edgar" -verify=false internal/bench/programs/crc.mc |
	sed 's/ rounds, .*/ rounds/' >"$TMP/cli.report"
diff "$TMP/service.report" "$TMP/cli.report"

kill -TERM "$PAD_PID"
wait "$PAD_PID"
PAD_PID=""
echo "ci.sh: service report matches CLI"

# --- batch + dictionary warm-start end-to-end --------------------------
# The same three-program corpus is mined twice against one persistent
# dictionary, by two separate daemon lifetimes (a restart empties the
# result cache, so the second run really re-mines). The second run must
# report dictionary warm-start hits while producing per-program image
# hashes identical to the first run's — and the first run's outputs are
# themselves pinned against direct library runs by the Go test suite
# (TestServiceBatchWarmstart) and against the edgar CLI above.
mkdir "$TMP/corpus"
cp internal/bench/programs/crc.mc internal/bench/programs/search.mc \
	internal/bench/programs/dijkstra.mc "$TMP/corpus/"

"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr2" \
	-dict "$TMP/frag.dict" 2>"$TMP/pad2.log" &
PAD_PID=$!
ADDR=$(wait_addr "$TMP/addr2" "$TMP/pad2.log")
"$TMP/pad" submit -addr "$ADDR" -json -dir "$TMP/corpus" >"$TMP/batch1.json"
kill -TERM "$PAD_PID"
wait "$PAD_PID"
PAD_PID=""

"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr3" \
	-dict "$TMP/frag.dict" 2>"$TMP/pad3.log" &
PAD_PID=$!
ADDR=$(wait_addr "$TMP/addr3" "$TMP/pad3.log")
"$TMP/pad" submit -addr "$ADDR" -json -dir "$TMP/corpus" >"$TMP/batch2.json"
kill -TERM "$PAD_PID"
wait "$PAD_PID"
PAD_PID=""

grep -o '"image_hash":"[0-9a-f]*"' "$TMP/batch1.json" >"$TMP/hashes1"
grep -o '"image_hash":"[0-9a-f]*"' "$TMP/batch2.json" >"$TMP/hashes2"
[ -s "$TMP/hashes1" ] || { echo "ci.sh: batch produced no image hashes" >&2; exit 1; }
diff "$TMP/hashes1" "$TMP/hashes2"
# The last dict_hits field in the status body is the batch total.
HITS=$(grep -o '"dict_hits":[0-9]*' "$TMP/batch2.json" | tail -1 | cut -d: -f2)
if [ -z "$HITS" ] || [ "$HITS" -eq 0 ]; then
	echo "ci.sh: warm-started batch reported no dictionary hits" >&2
	exit 1
fi
echo "ci.sh: dictionary warm-start reproduces identical images (dict_hits=$HITS)"

# --- sharded distributed search end-to-end -----------------------------
# Two shard-worker pads plus a coordinator, all on loopback: the same
# three-program corpus is mined by a plain single-process daemon and by
# the coordinator distributing speculation across the workers, and the
# per-program image hashes must be identical — shards only move the
# speculative work, the coordinator's replay decides every byte. The
# worker logs must show walks actually opened, so the equality is not
# vacuously two local runs.
"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr_p" 2>"$TMP/pad_plain.log" &
PAD_PID=$!
ADDR=$(wait_addr "$TMP/addr_p" "$TMP/pad_plain.log")
"$TMP/pad" submit -addr "$ADDR" -json -dir "$TMP/corpus" >"$TMP/shard_plain.json"
kill -TERM "$PAD_PID"
wait "$PAD_PID"
PAD_PID=""

"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr_w1" -shard-of ci-coordinator 2>"$TMP/pad_w1.log" &
W1_PID=$!
"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr_w2" -shard-of ci-coordinator 2>"$TMP/pad_w2.log" &
W2_PID=$!
W1=$(wait_addr "$TMP/addr_w1" "$TMP/pad_w1.log")
W2=$(wait_addr "$TMP/addr_w2" "$TMP/pad_w2.log")
"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr_c" -shards "$W1,$W2" 2>"$TMP/pad_coord.log" &
PAD_PID=$!
ADDR=$(wait_addr "$TMP/addr_c" "$TMP/pad_coord.log")
"$TMP/pad" submit -addr "$ADDR" -json -dir "$TMP/corpus" >"$TMP/shard_coord.json"
kill -TERM "$PAD_PID"
wait "$PAD_PID"
PAD_PID=""
kill -TERM "$W1_PID" "$W2_PID"
wait "$W1_PID" "$W2_PID"
W1_PID=""
W2_PID=""

grep -o '"image_hash":"[0-9a-f]*"' "$TMP/shard_plain.json" >"$TMP/shard_hashes_plain"
grep -o '"image_hash":"[0-9a-f]*"' "$TMP/shard_coord.json" >"$TMP/shard_hashes_coord"
[ -s "$TMP/shard_hashes_plain" ] || { echo "ci.sh: plain batch produced no image hashes" >&2; exit 1; }
diff "$TMP/shard_hashes_plain" "$TMP/shard_hashes_coord"
for wl in "$TMP/pad_w1.log" "$TMP/pad_w2.log"; do
	grep -q "shard walk opened" "$wl" || {
		echo "ci.sh: worker $wl served no shard walks" >&2
		exit 1
	}
done
echo "ci.sh: sharded coordinator reproduces identical images across 2 workers"

# --- benchmark-record smoke --------------------------------------------
# The JSON benchmark harness must keep producing records the committed
# baseline schema can be compared against; two fast programs suffice as
# a smoke test (the full record is regenerated with paper-tables
# -bench-json across the whole suite, see README). Besides wall clock
# (reported, not gated — too noisy), paper-tables compares the
# deterministic lattice visit counts against the committed baseline and
# exits nonzero when they regress beyond tolerance (>5% on any run, >2%
# in total), so this step is the search-cost regression gate.
go build -o "$TMP/paper-tables" ./cmd/paper-tables
"$TMP/paper-tables" -only timings -programs crc,dijkstra -miners edgar \
	-noverify -bench-json "$TMP/bench.json" \
	-bench-baseline BENCH_edgar.baseline.json >/dev/null
grep -q '"total_wall_ms"' "$TMP/bench.json"
grep -q '"name": "crc"' "$TMP/bench.json"
grep -q '"visits"' "$TMP/bench.json"
echo "ci.sh: benchmark record and visit-count gate passed"

# --- multiresolution visit gate ----------------------------------------
# The coarse-to-fine pass must never make the fine walk MORE expensive:
# mine the same programs with multires disabled, then require the
# multires arm (the default) to visit at most as many fine-lattice nodes
# on every run. -visits-not-above is strict (any ratio > 1.00 fails) and
# fingerprint-blind, since comparing the two search configurations is
# the point. The smoke lane covers every benchmark whose walk completes
# quickly; -full adds rijndael, whose truncating rounds exercise the
# discard-and-rerun path.
MR_PROGRAMS=bitcnts,crc,dijkstra,patricia,qsort,search,sha
if [ "${1:-}" = "-full" ]; then
	MR_PROGRAMS="$MR_PROGRAMS,rijndael"
fi
"$TMP/paper-tables" -only timings -programs "$MR_PROGRAMS" -miners edgar \
	-noverify -nomultires -bench-json "$TMP/bench.nomr.json" >/dev/null
"$TMP/paper-tables" -only timings -programs "$MR_PROGRAMS" -miners edgar \
	-noverify -visits-not-above "$TMP/bench.nomr.json" >/dev/null
echo "ci.sh: multires arm never visits more fine-lattice nodes than plain"
