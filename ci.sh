#!/bin/sh
# CI gate: vet plus the whole test suite under the race detector. The
# parallel search is only trustworthy raced, so -race is not optional
# here. Short mode (the default) trims the end-to-end determinism suite
# to its two fastest benchmark programs; run `./ci.sh -full` for the
# complete matrix. After the tests, the pad daemon is exercised for
# real: serve on an ephemeral port, submit a benchmark over HTTP, and
# require the report to match the edgar CLI byte-for-byte.
set -eu
cd "$(dirname "$0")"

go vet ./...
if [ "${1:-}" = "-full" ]; then
	go test -race -count=1 ./...
else
	go test -race -count=1 -short ./...
fi

# Mining microbenchmarks as a smoke test: one iteration each, just to
# prove the hot-loop harness still compiles and runs. (-short also keeps
# the heavy same-process layout A/B out of the smoke lane.)
go test ./internal/mining -run '^$' -bench . -benchtime 1x -short >/dev/null

# --- compaction-service end-to-end check -------------------------------
# The service deliberately omits the wall-clock suffix from its reports
# (cached responses must be byte-identical to fresh ones), so the CLI
# output is normalized with sed before diffing.
TMP=$(mktemp -d)
PAD_PID=""
cleanup() {
	[ -n "$PAD_PID" ] && kill "$PAD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/pad" ./cmd/pad
go build -o "$TMP/edgar" ./cmd/edgar

"$TMP/pad" serve -addr 127.0.0.1:0 -addr-file "$TMP/addr" 2>"$TMP/pad.log" &
PAD_PID=$!
i=0
while [ ! -s "$TMP/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "ci.sh: pad never wrote its address" >&2
		cat "$TMP/pad.log" >&2
		exit 1
	fi
	sleep 0.1
done
ADDR=$(cat "$TMP/addr")

"$TMP/pad" submit -addr "$ADDR" internal/bench/programs/crc.mc >"$TMP/service.report"
"$TMP/edgar" -verify=false internal/bench/programs/crc.mc |
	sed 's/ rounds, .*/ rounds/' >"$TMP/cli.report"
diff "$TMP/service.report" "$TMP/cli.report"

kill -TERM "$PAD_PID"
wait "$PAD_PID"
PAD_PID=""
echo "ci.sh: service report matches CLI"

# --- benchmark-record smoke --------------------------------------------
# The JSON benchmark harness must keep producing records the committed
# baseline schema can be compared against; two fast programs suffice as
# a smoke test (the full record is regenerated with paper-tables
# -bench-json across the whole suite, see README). Besides wall clock
# (reported, not gated — too noisy), paper-tables compares the
# deterministic lattice visit counts against the committed baseline and
# exits nonzero when they regress beyond tolerance (>5% on any run, >2%
# in total), so this step is the search-cost regression gate.
go build -o "$TMP/paper-tables" ./cmd/paper-tables
"$TMP/paper-tables" -only timings -programs crc,dijkstra -miners edgar \
	-noverify -bench-json "$TMP/bench.json" \
	-bench-baseline BENCH_edgar.baseline.json >/dev/null
grep -q '"total_wall_ms"' "$TMP/bench.json"
grep -q '"name": "crc"' "$TMP/bench.json"
grep -q '"visits"' "$TMP/bench.json"
echo "ci.sh: benchmark record and visit-count gate passed"
