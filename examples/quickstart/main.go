// Quickstart: assemble the paper's running example (Fig. 1), look at its
// data-flow structure, and watch each miner's view of it — then optimize
// a real program end to end with the public API.
package main

import (
	"fmt"
	"log"

	"graphpa"
)

// The running example of the paper (Fig. 1), embedded in a callable
// procedure so the whole file is a valid program. The block walks an
// array and performs interleaved computations whose instruction ORDER
// differs between the repetitions of the same data-flow fragment —
// invisible to suffix-based PA, visible to graph-based PA.
const runningExample = `
_start:
	bl work
	mov r0, #0
	swi 0
work:
	push {r4, lr}
	ldr r1, =arr
	mov r2, #100
	ldr r3, [r1]!
	sub r2, r2, r3
	add r4, r2, #4
	ldr r3, [r1]!
	sub r2, r2, r3
	ldr r3, [r1]!
	add r4, r2, #4
	mov r0, r4
	pop {r4, pc}
	.pool
.data
arr:
	.word 1
	.word 2
	.word 3
	.word 4
`

const program = `
int hash(int x, int k) {
	int t = x * 31 + k;
	t = t ^ (t << 3);
	t = t + (t >> 5);
	return t;
}
int mix(int x, int k) {
	int t = x * 31 + k;
	t = t ^ (t << 3);
	t = t + (t >> 5);
	return t ^ 255;
}
int main() {
	int acc = 1;
	for (int i = 0; i < 30; i += 1) {
		acc = hash(acc, i);
		acc = mix(acc, i);
	}
	printi(acc);
	putc(10);
	return acc & 127;
}
`

func main() {
	// Part 1: the paper's running example, straight from assembly.
	bin, err := graphpa.Assemble(runningExample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running example: %d instructions\n", bin.Instructions())
	code, _, err := bin.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exit code %d\n\n", code)

	// Part 2: a compiled program through every miner.
	src, err := graphpa.Compile(program, graphpa.CompileOptions{Optimize: true, Schedule: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled program: %d instructions\n", src.Instructions())
	for _, miner := range graphpa.Miners() {
		opt, rep, err := src.Optimize(graphpa.OptimizeOptions{Miner: miner})
		if err != nil {
			log.Fatal(err)
		}
		if err := graphpa.Verify(src, opt); err != nil {
			log.Fatalf("%s broke the program: %v", miner, err)
		}
		fmt.Printf("%-12s saved %3d instructions (%d extractions, %v)\n",
			miner, rep.Saved(), len(rep.Extractions), rep.Duration.Round(1000000))
	}
}
