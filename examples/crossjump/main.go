// Crossjump: demonstrates the second extraction mechanism (paper Fig. 12)
// — tail merging. Three routines end in the same epilogue computation;
// instead of outlining it behind a call, PA keeps one copy and branches
// the other tails to it, saving a call AND a return.
package main

import (
	"fmt"
	"log"
	"strings"

	"graphpa"
)

const asmSrc = `
_start:
	bl fmt_a
	mov r4, r0
	bl fmt_b
	add r4, r4, r0
	bl fmt_c
	add r0, r4, r0
	swi 0
fmt_a:
	push {r4, lr}
	mov r0, #17
	add r0, r0, #5
	eor r0, r0, #3
	mov r0, r0, lsl #2
	sub r0, r0, #1
	pop {r4, pc}
fmt_b:
	push {r4, lr}
	mov r0, #29
	add r0, r0, #5
	eor r0, r0, #3
	mov r0, r0, lsl #2
	sub r0, r0, #1
	pop {r4, pc}
fmt_c:
	push {r4, lr}
	mov r0, #43
	add r0, r0, #5
	eor r0, r0, #3
	mov r0, r0, lsl #2
	sub r0, r0, #1
	pop {r4, pc}
`

func main() {
	bin, err := graphpa.Assemble(asmSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %d instructions\n", bin.Instructions())

	opt, rep, err := bin.Optimize(graphpa.OptimizeOptions{Miner: "edgar"})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range rep.Extractions {
		fmt.Printf("extraction %s: method=%s size=%d occurrences=%d benefit=%d\n",
			e.Name, e.Method, e.Size, e.Occurrences, e.Benefit)
	}
	fmt.Printf("after: %d instructions (saved %d)\n", rep.After, rep.Saved())

	if err := graphpa.Verify(bin, opt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: identical behaviour")

	dis, err := opt.Disassemble()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized code (note the merged tail and the b instructions):")
	for _, line := range strings.Split(dis, "\n") {
		fmt.Println("  " + line)
	}
}
