// Latticedemo: a look inside the miner — builds the dependence graph of
// the paper's running example block (Fig. 2), prints its edges, then
// walks the search lattice (Fig. 6) showing each frequent fragment's
// canonical DFS code (Fig. 7) and its embedding counts under both support
// definitions (DgSpan's graph count vs Edgar's non-overlapping embedding
// count).
package main

import (
	"fmt"
	"log"

	"graphpa/internal/asm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/mining"
	"graphpa/internal/pa"
)

const fig1 = `
	ldr r3, [r1]!
	sub r2, r2, r3
	add r4, r2, #4
	ldr r3, [r1]!
	sub r2, r2, r3
	ldr r3, [r1]!
	add r4, r2, #4
`

func main() {
	unit, err := asm.Parse(fig1)
	if err != nil {
		log.Fatal(err)
	}
	block := &cfg.Block{Fn: &cfg.Func{Name: "fig1", LRSaved: true}, Instrs: unit.Text}
	g := dfg.Build(block, nil)

	fmt.Println("Fig. 2 — data-flow graph of the running example:")
	for i := 0; i < g.N(); i++ {
		fmt.Printf("  %d: %s  (in=%d out=%d)\n", i, g.NodeLabel(i), g.InDegree(i), g.OutDegree(i))
	}
	for _, e := range g.Edges {
		fmt.Printf("  %d -%s-> %d\n", e.From, e.Label(), e.To)
	}

	fmt.Println("\nFig. 6/7 — frequent fragments and their canonical DFS codes:")
	mg := pa.MiningGraph(g, false)
	cfgm := mining.Config{MinSupport: 2, EmbeddingSupport: true, MaxNodes: 5}
	mining.Mine([]*mining.Graph{mg}, cfgm, func(p *mining.Pattern) {
		fmt.Printf("  %d nodes, %2d embeddings, %d disjoint | %s\n",
			p.Code.NumNodes(), p.Embeddings.Len(), len(p.Disjoint), p.Code)
	})

	fmt.Println("\nGraph-count support (DgSpan view) on the same single block:")
	found := 0
	mining.Mine([]*mining.Graph{mg}, mining.Config{MinSupport: 2, MaxNodes: 5}, func(p *mining.Pattern) {
		found++
	})
	fmt.Printf("  %d frequent fragments — the repeats inside one block are invisible\n", found)
	fmt.Println("  (this is exactly the paper's §3.1 argument for embedding-based Edgar)")
}
