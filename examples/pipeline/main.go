// Pipeline: the complete paper workflow on a real workload — compile a
// CRC benchmark with mini-C, statically link it, post-link-optimize with
// Edgar, then run both binaries and compare their observable behaviour
// and sizes. This is the "embedded firmware build" scenario from the
// paper's introduction: a batch job that trades optimization time for
// bytes of mass-produced flash.
package main

import (
	"fmt"
	"log"

	"graphpa"
)

const firmware = `
/* a little firmware image: table-driven CRC plus a command loop */
int crctab[256];
char frame[64];

int shru(int x, int n) {
	if (n <= 0) return x;
	if (n > 31) return 0;
	return (x >> n) & (0x7fffffff >> (n - 1));
}

void make_table(int poly) {
	for (int i = 0; i < 256; i += 1) {
		int c = i;
		for (int k = 0; k < 8; k += 1) {
			if (c & 1) { c = shru(c, 1) ^ poly; } else { c = shru(c, 1); }
		}
		crctab[i] = c;
	}
}

int crc(char* p, int n) {
	int c = ~0;
	for (int i = 0; i < n; i += 1) {
		c = crctab[(c ^ p[i]) & 255] ^ shru(c, 8);
	}
	return ~c;
}

void make_frame(int seed) {
	srand(seed);
	for (int i = 0; i < 64; i += 1) frame[i] = rand() & 255;
}

int main() {
	make_table(0xedb88320);
	int acc = 0;
	for (int f = 0; f < 5; f += 1) {
		make_frame(f + 1);
		int c = crc(frame, 64);
		acc = acc ^ c;
		puts("frame ");
		printi(f);
		puts(": crc=");
		printi(c);
		putc(10);
	}
	return acc & 127;
}
`

func main() {
	bin, err := graphpa.Compile(firmware, graphpa.CompileOptions{Optimize: true, Schedule: true})
	if err != nil {
		log.Fatal(err)
	}
	before := bin.Instructions()
	fmt.Printf("firmware: %d instructions, %d words total\n", before, bin.Words())

	opt, rep, err := bin.Optimize(graphpa.OptimizeOptions{Miner: "edgar"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edgar: %d -> %d instructions in %d rounds\n", rep.Before, rep.After, rep.Rounds)
	for _, e := range rep.Extractions {
		fmt.Printf("  %-8s %-10s %d instrs x %d occurrences (saves %d)\n",
			e.Name, e.Method, e.Size, e.Occurrences, e.Benefit)
	}

	// Differential run: the optimized firmware must behave identically.
	c1, out1, err := bin.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	c2, out2, err := opt.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	if c1 != c2 || out1 != out2 {
		log.Fatalf("behaviour diverged: %d vs %d", c1, c2)
	}
	fmt.Printf("verified: identical output (%d bytes), exit %d\n", len(out1), c1)
	fmt.Print(out1)
}
